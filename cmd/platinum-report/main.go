// Command platinum-report runs one of the paper's applications on the
// simulated machine and prints the kernel's post-mortem memory
// management report (§4.2): per-Cpage fault counts, fault-handler
// contention, replication/migration/freeze activity, and ATC hit rates.
// This is the instrumentation that let the paper's authors diagnose the
// frozen-pivot-page anomaly.
//
// With -json the same data is emitted as one structured document
// (metrics.Report, schema_version 1): the machine-wide and per-node
// cost breakdowns — exact per-cause time, not samples — plus the
// per-page records ranked most-expensive-first. See EXPERIMENTS.md for
// the field-by-field schema.
//
// With -spans the run also records causal spans (internal/span) and
// writes them as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing; see cmd/platinum-trace for a dedicated exporter.
//
// Usage:
//
//	platinum-report [-app gauss|mergesort|backprop|anecdote] [-procs n]
//	                [-n size] [-top k] [-json]
//	                [-trace n] [-timeline file.jsonl] [-bucket d]
//	                [-spans file.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/metrics"
	"platinum/internal/sim"
	"platinum/internal/span"
	trc "platinum/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against explicit streams so tests can drive
// every CLI path; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("platinum-report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "gauss", "application: gauss, mergesort, backprop, anecdote")
	procs := fs.Int("procs", 8, "processors to use")
	size := fs.Int("n", 240, "problem size (matrix dim / words / epochs)")
	top := fs.Int("top", 20, "show the k busiest pages")
	jsonOut := fs.Bool("json", false, "emit the structured metrics report as JSON")
	trace := fs.Int("trace", 0, "record up to this many protocol events and print a summary")
	timeline := fs.String("timeline", "", "write a per-node timeline as JSON Lines to this file (requires -trace)")
	bucket := fs.Duration("bucket", time.Millisecond, "timeline bucket width (virtual time)")
	spans := fs.String("spans", "", "record causal spans and write Chrome trace-event JSON to this file")
	histOn := fs.Bool("hist", false, "record latency histograms (per-cause charges and whole operations) and print percentile tables")
	series := fs.Duration("series", 0, "record windowed rate curves over simulated time with this window width (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "platinum-report:", err)
		return 1
	}

	// Acquire the platform through the pool: repeated in-process runs
	// (the determinism A/B tests, future batch drivers) reuse one reset
	// kernel instead of booting a fresh one. The key carries every
	// setting that changes the kernel's instrumentation state.
	poolKey := fmt.Sprintf("platinum-report:trace=%d spans=%t hist=%t series=%v",
		*trace, *spans != "", *histOn, *series)
	pl, err := apps.AcquirePlatform(poolKey, kernel.DefaultConfig())
	if err != nil {
		return fail(err)
	}
	if *trace > 0 {
		pl.K.EnableTrace(*trace)
	}
	if *spans != "" {
		if *app == "anecdote" {
			return fail(fmt.Errorf("-spans is not supported with -app anecdote (it boots its own kernel)"))
		}
		pl.K.EnableSpans(0)
	}
	if *histOn || *series > 0 {
		if *app == "anecdote" {
			return fail(fmt.Errorf("-hist/-series are not supported with -app anecdote (it boots its own kernel)"))
		}
		if *histOn {
			pl.K.EnableHistograms()
		}
		if *series > 0 {
			pl.K.EnableSeries(sim.Time(*series), 0)
		}
	}

	var elapsed sim.Time
	var header string
	switch *app {
	case "gauss":
		cfg := apps.DefaultGaussConfig(*size, *procs)
		r, err := apps.RunGaussPlatinum(pl, cfg)
		if err != nil {
			return fail(err)
		}
		want := apps.GaussReferenceChecksum(cfg)
		elapsed = r.Elapsed
		header = fmt.Sprintf("gauss %dx%d on %d procs: %v (checksum %#x, reference %#x)",
			*size, *size, *procs, r.Elapsed, r.Checksum, want)
	case "mergesort":
		cfg := apps.DefaultMergeSortConfig(*procs)
		if *size > 0 {
			cfg.Words = *size
		}
		r, err := apps.RunMergeSort(pl, cfg)
		if err != nil {
			return fail(err)
		}
		elapsed = r.Elapsed
		header = fmt.Sprintf("mergesort %d words on %d procs: %v (sorted=%v)",
			cfg.Words, *procs, r.Elapsed, r.Sorted)
	case "backprop":
		cfg := apps.DefaultBackpropConfig(*procs)
		if *size > 0 && *size < 1000 {
			cfg.Epochs = *size
		}
		r, err := apps.RunBackprop(pl, cfg)
		if err != nil {
			return fail(err)
		}
		elapsed = r.Elapsed
		header = fmt.Sprintf("backprop %d epochs on %d procs: %v (SSE %.3f -> %.3f)",
			cfg.Epochs, *procs, r.Elapsed, r.InitialSSE, r.FinalSSE)
	case "anecdote":
		cfg := apps.DefaultAnecdoteConfig(*procs)
		r, err := apps.RunAnecdote(cfg)
		if err != nil {
			return fail(err)
		}
		if err := metrics.CheckConservation(r.Accounts); err != nil {
			return fail(err)
		}
		if *jsonOut {
			// The anecdote boots its own kernel; report on that one.
			mr := metrics.BuildReport("anecdote", *procs, r.Elapsed, r.Accounts, r.Report)
			if err := metrics.WriteJSON(stdout, mr); err != nil {
				return fail(err)
			}
			apps.ReleasePlatform(poolKey, pl)
			return 0
		}
		fmt.Fprintf(stdout, "anecdote on %d procs: %v (size page frozen: %v)\n",
			*procs, r.Elapsed, r.SizeFrozen)
		fmt.Fprintln(stdout, "(anecdote boots its own kernel; report below is for the unused default kernel)")
		elapsed = r.Elapsed
	default:
		return fail(fmt.Errorf("unknown app %q", *app))
	}

	accounts := pl.K.NodeAccounts()
	if err := metrics.CheckConservation(accounts); err != nil {
		return fail(err)
	}
	if *histOn {
		// Histograms dogfood their own invariant: every nanosecond the
		// accounts classified must appear in a bucket, exactly.
		if err := metrics.CheckHistConservation(pl.K.Engine(), accounts); err != nil {
			return fail(err)
		}
	}
	report := pl.K.Report()
	var hsec *metrics.Histograms
	var ssec *metrics.SeriesMetrics
	if *histOn || *series > 0 {
		hsec = metrics.BuildHistograms(pl.K.Engine(), pl.K.Spans())
		ssec = metrics.BuildSeries(pl.K.CauseSeries(), pl.K.Spans().CountSeries())
	}

	if *jsonOut {
		mr := metrics.BuildReport(*app, *procs, elapsed, accounts, report)
		if *top > 0 && len(mr.Pages) > *top {
			mr.Pages = mr.Pages[:*top]
		}
		mr.AttachTelemetry(hsec, ssec)
		if err := metrics.WriteJSON(stdout, mr); err != nil {
			return fail(err)
		}
	} else {
		if header != "" {
			fmt.Fprintln(stdout, header)
			fmt.Fprintln(stdout)
		}
		if *top > 0 && len(report.Pages) > *top {
			report.Pages = report.Pages[:*top]
		}
		if _, err := report.WriteTo(stdout); err != nil {
			return fail(err)
		}
		writeBreakdown(stdout, pl.K.TotalAccount())
		// ATC summary.
		var hits, misses int64
		for _, a := range report.ATC {
			hits += a.Hits
			misses += a.Misses
		}
		if hits+misses > 0 {
			fmt.Fprintf(stdout, "\nATC: %d hits, %d misses (%.1f%% hit rate)\n",
				hits, misses, 100*float64(hits)/float64(hits+misses))
		}
		if hsec != nil {
			writeHistTables(stdout, hsec)
		}
		if ssec != nil {
			writeSeriesTable(stdout, ssec)
		}
	}

	if *spans != "" {
		rec := pl.K.Spans()
		all := rec.Spans()
		f, err := os.Create(*spans)
		if err != nil {
			return fail(err)
		}
		if err := span.WriteChrome(f, all); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "\nspans: %d recorded (%d dropped) -> %s\n",
				len(all), rec.Dropped(), *spans)
		}
	}

	if *trace > 0 {
		events, dropped := pl.K.Trace()
		if *timeline != "" {
			f, err := os.Create(*timeline)
			if err != nil {
				return fail(err)
			}
			if err := metrics.WriteTimelineJSONL(f, events, sim.Time(*bucket)); err != nil {
				f.Close()
				return fail(err)
			}
			if err := f.Close(); err != nil {
				return fail(err)
			}
		}
		if !*jsonOut {
			fmt.Fprintln(stdout)
			if _, err := trc.Summarize(events, dropped).WriteTo(stdout); err != nil {
				return fail(err)
			}
			fmt.Fprintln(stdout, "busiest pages (faults, moves, freeze cycles, ping-pong runs):")
			pages := trc.ByPage(events)
			if len(pages) > 8 {
				pages = pages[:8]
			}
			for _, h := range pages {
				fmt.Fprintf(stdout, "  cpage %-5d faults=%-5d moves=%-5d cycles=%-3d pingpong=%d\n",
					h.Cpage, h.Faults, h.Moves, h.FreezeCycles, h.PingPongRuns)
			}
		}
	}
	apps.ReleasePlatform(poolKey, pl)
	return 0
}

// writeHistTables prints the latency-distribution tables: machine-wide
// per-cause charge distributions, then whole-operation distributions.
// Percentiles are bucket upper bounds (<=12.5% relative error), capped
// at the exact max; count, sum-derived mean and max are exact.
func writeHistTables(w io.Writer, h *metrics.Histograms) {
	writeHistSection := func(title string, hs []metrics.HistogramMetrics) {
		if len(hs) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n", title)
		fmt.Fprintf(w, "  %-15s %10s %12s %12s %12s %12s %12s %12s\n",
			"", "count", "p50", "p90", "p99", "p99.9", "max", "mean")
		for _, m := range hs {
			mean := sim.Time(0)
			if m.Count > 0 {
				mean = sim.Time(m.SumNs / m.Count)
			}
			fmt.Fprintf(w, "  %-15s %10d %12v %12v %12v %12v %12v %12v\n",
				m.Name, m.Count, sim.Time(m.P50Ns), sim.Time(m.P90Ns),
				sim.Time(m.P99Ns), sim.Time(m.P999Ns), sim.Time(m.MaxNs), mean)
		}
	}
	writeHistSection("charge latency distributions", h.Charges)
	writeHistSection("operation latency distributions", h.Ops)
}

// writeSeriesTable prints the rate curves: per window of simulated
// time, operation counts plus the window's remote-access and
// fault+shootdown time fractions.
func writeSeriesTable(w io.Writer, s *metrics.SeriesMetrics) {
	if len(s.Windows) == 0 {
		return
	}
	fmt.Fprintf(w, "\nrate curves (window %v of simulated time):\n", sim.Time(s.WidthNs))
	if s.SpilledWindows > 0 {
		fmt.Fprintf(w, "  (%d older windows evicted; totals preserved in spill)\n", s.SpilledWindows)
	}
	fmt.Fprintf(w, "  %-14s %7s %7s %7s %7s %7s %8s %8s\n",
		"window", "faults", "shoot", "xfer", "freeze", "thaw", "remote%", "fault%")
	for _, win := range s.Windows {
		var total, remote, fault int64
		for name, v := range win.TimeNs {
			total += v
			switch name {
			case "remote_access":
				remote += v
			case "fault", "shootdown":
				fault += v
			}
		}
		remoteFrac, faultFrac := 0.0, 0.0
		if total > 0 {
			remoteFrac = 100 * float64(remote) / float64(total)
			faultFrac = 100 * float64(fault) / float64(total)
		}
		fmt.Fprintf(w, "  %-14v %7d %7d %7d %7d %7d %7.1f%% %7.1f%%\n",
			sim.Time(win.StartNs),
			win.Counts["faults"], win.Counts["shootdowns"], win.Counts["block_transfers"],
			win.Counts["freezes"], win.Counts["thaws"], remoteFrac, faultFrac)
	}
}

// writeBreakdown prints the machine-wide per-cause time table.
func writeBreakdown(w io.Writer, a sim.Account) {
	total := a.Total()
	if total == 0 {
		return
	}
	fmt.Fprintf(w, "\ncost breakdown (total %v across all processors):\n", total)
	for c := sim.Cause(0); c < sim.NumCauses; c++ {
		if a[c] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-15v %14v %6.1f%%\n", c, a[c], 100*float64(a[c])/float64(total))
	}
}
