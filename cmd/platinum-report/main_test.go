package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCmd drives the CLI with args and returns stdout and the exit code.
func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	if errb.Len() > 0 {
		t.Logf("stderr: %s", errb.String())
	}
	return out.String(), code
}

// checkGolden compares got against the named golden file, rewriting it
// under -update (the same convention as internal/metrics).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// The simulation is deterministic, so every CLI path is pinned
// byte-for-byte against a golden: a diff means either the simulated
// run changed (timing, protocol behaviour) or the output format did.

func TestReportTextGolden(t *testing.T) {
	out, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-top", "4")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	checkGolden(t, "gauss_report.golden.txt", []byte(out))
}

func TestReportJSONGolden(t *testing.T) {
	out, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-top", "4", "-json")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	checkGolden(t, "gauss_report.golden.json", []byte(out))
}

func TestTimelineGolden(t *testing.T) {
	dir := t.TempDir()
	tl := filepath.Join(dir, "timeline.jsonl")
	_, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2",
		"-trace", "2000", "-timeline", tl)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	got, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "gauss_timeline.golden.jsonl", got)
}

func TestSpansGolden(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "spans.json")
	out, code := runCmd(t, "-app", "gauss", "-n", "8", "-procs", "2", "-spans", tr)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "spans:") {
		t.Errorf("stdout does not mention the span export:\n%s", out)
	}
	got, err := os.ReadFile(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("-spans output is not valid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("-spans wrote no trace events")
	}
	checkGolden(t, "gauss_spans.golden.json", got)
}

func TestSpansRejectsAnecdote(t *testing.T) {
	_, code := runCmd(t, "-app", "anecdote", "-spans", filepath.Join(t.TempDir(), "x.json"))
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestUnknownAppFails(t *testing.T) {
	_, code := runCmd(t, "-app", "nosuch")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}
