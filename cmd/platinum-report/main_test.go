package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"platinum/internal/apps"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCmd drives the CLI with args and returns stdout and the exit code.
func runCmd(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	if errb.Len() > 0 {
		t.Logf("stderr: %s", errb.String())
	}
	return out.String(), code
}

// checkGolden compares got against the named golden file, rewriting it
// under -update (the same convention as internal/metrics).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// The simulation is deterministic, so every CLI path is pinned
// byte-for-byte against a golden: a diff means either the simulated
// run changed (timing, protocol behaviour) or the output format did.

func TestReportTextGolden(t *testing.T) {
	out, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-top", "4")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	checkGolden(t, "gauss_report.golden.txt", []byte(out))
}

func TestReportJSONGolden(t *testing.T) {
	out, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-top", "4", "-json")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	checkGolden(t, "gauss_report.golden.json", []byte(out))
}

func TestHistTextGolden(t *testing.T) {
	out, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-top", "4",
		"-hist", "-series", "1ms")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	checkGolden(t, "gauss_hist.golden.txt", []byte(out))
}

func TestHistJSONGolden(t *testing.T) {
	out, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-top", "4",
		"-hist", "-series", "1ms", "-json")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var doc struct {
		SchemaVersion int             `json:"schema_version"`
		Histograms    json.RawMessage `json:"histograms"`
		Series        json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.SchemaVersion != 2 {
		t.Errorf("schema_version = %d, want 2 with telemetry attached", doc.SchemaVersion)
	}
	if len(doc.Histograms) == 0 || len(doc.Series) == 0 {
		t.Error("telemetry sections missing from -hist -series -json output")
	}
	checkGolden(t, "gauss_hist.golden.json", []byte(out))
}

// TestZeroConfigOmitsTelemetry pins the omitempty contract: without
// -hist/-series the JSON document carries neither section and keeps
// schema version 1.
func TestZeroConfigOmitsTelemetry(t *testing.T) {
	out, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2", "-top", "4", "-json")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if strings.Contains(out, "histograms") || strings.Contains(out, "\"series\"") {
		t.Error("telemetry sections present in zero-config output")
	}
	var doc struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != 1 {
		t.Errorf("schema_version = %d, want 1 without telemetry", doc.SchemaVersion)
	}
}

func TestTimelineGolden(t *testing.T) {
	dir := t.TempDir()
	tl := filepath.Join(dir, "timeline.jsonl")
	_, code := runCmd(t, "-app", "gauss", "-n", "16", "-procs", "2",
		"-trace", "2000", "-timeline", tl)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	got, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "gauss_timeline.golden.jsonl", got)
}

func TestSpansGolden(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "spans.json")
	out, code := runCmd(t, "-app", "gauss", "-n", "8", "-procs", "2", "-spans", tr)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "spans:") {
		t.Errorf("stdout does not mention the span export:\n%s", out)
	}
	got, err := os.ReadFile(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("-spans output is not valid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("-spans wrote no trace events")
	}
	checkGolden(t, "gauss_spans.golden.json", got)
}

// TestPoolingOutputIdentical is the end-to-end pooled-vs-reference
// gate: for gauss and mergesort, every output mode (-json report,
// -trace timeline, -spans Chrome trace) must be byte-identical between
// the reference mode (pooling off, fresh kernel each run) and the
// pooled mode — including a second pooled run, which exercises a
// reused, reset platform instead of a fresh boot.
func TestPoolingOutputIdentical(t *testing.T) {
	dir := t.TempDir()
	for _, app := range []string{"gauss", "mergesort"} {
		// Small sizes keep the three-runs-per-mode matrix fast.
		base := []string{"-app", app, "-n", "16", "-procs", "2"}
		if app == "mergesort" {
			base = []string{"-app", app, "-n", "256", "-procs", "2"}
		}
		modes := []struct {
			name string
			args []string // appended to base; FILE is replaced per mode
			file string   // side-channel output to compare, "" for stdout only
		}{
			{"json", []string{"-json"}, ""},
			{"timeline", []string{"-trace", "2000", "-timeline", "FILE"}, filepath.Join(dir, app+"_timeline.jsonl")},
			{"spans", []string{"-spans", "FILE"}, filepath.Join(dir, app+"_spans.json")},
			{"hist", []string{"-hist", "-series", "1ms", "-json"}, ""},
		}
		for _, m := range modes {
			args := append(append([]string{}, base...), m.args...)
			for i, a := range args {
				if a == "FILE" {
					args[i] = m.file
				}
			}
			// capture runs the CLI once and returns stdout plus the
			// side-channel file (same path every run, so stdout that
			// echoes it stays comparable).
			capture := func() string {
				t.Helper()
				out, code := runCmd(t, args...)
				if code != 0 {
					t.Fatalf("%s/%s: exit code %d", app, m.name, code)
				}
				if m.file != "" {
					got, err := os.ReadFile(m.file)
					if err != nil {
						t.Fatal(err)
					}
					out += "\n--file--\n" + string(got)
				}
				return out
			}
			prev := apps.SetPooling(false)
			ref := capture()
			apps.SetPooling(true)
			first := capture()  // cold pool: fresh boot, released after
			second := capture() // warm pool: reused, reset platform
			apps.SetPooling(prev)
			if first != ref {
				t.Errorf("%s/%s: pooled output differs from reference", app, m.name)
			}
			if second != ref {
				t.Errorf("%s/%s: reused-platform output differs from reference", app, m.name)
			}
		}
	}
}

func TestSpansRejectsAnecdote(t *testing.T) {
	_, code := runCmd(t, "-app", "anecdote", "-spans", filepath.Join(t.TempDir(), "x.json"))
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestHistRejectsAnecdote(t *testing.T) {
	_, code := runCmd(t, "-app", "anecdote", "-hist")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestUnknownAppFails(t *testing.T) {
	_, code := runCmd(t, "-app", "nosuch")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}
