// Command platinum-stress runs the seeded stress/fault-injection
// harness for the coherent memory protocol (internal/stress): a
// randomized schedule of reads, writes, time advances, address-space
// deactivations, defrost sweeps and teardowns, with the protocol's
// structural invariants, cost-attribution conservation, and data
// coherence checked after every operation.
//
// A single run replays one seed; -duration turns it into a soak that
// keeps running consecutive seeds until the wall-clock budget expires.
// On failure the schedule is shrunk (unless -shrink=false) and a
// minimal reproducer — seed plus op listing — is printed to stderr,
// and the process exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"platinum/internal/sim"
	"platinum/internal/stress"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "schedule seed (soak mode: first seed)")
		ops        = flag.Int("ops", 20000, "operations per run")
		procs      = flag.Int("procs", 4, "simulated processors")
		spaces     = flag.Int("spaces", 2, "address spaces sharing the object")
		pages      = flag.Int("pages", 8, "pages in the shared object")
		frames     = flag.Int("frames", 6, "frames per memory module")
		duration   = flag.Duration("duration", 0, "soak for this wall-clock time over consecutive seeds (0 = single run)")
		faults     = flag.Bool("faults", false, "enable fault injection (retries, transfer stalls, slow acks, alloc failures)")
		shrink     = flag.Bool("shrink", true, "shrink the schedule to a minimal reproducer on failure")
		bug        = flag.String("bug", "", "deliberately inject a protocol bug (self-test): \"desync\"")
		verbose    = flag.Bool("v", false, "print per-run summaries in soak mode")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "platinum-stress: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "platinum-stress: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := stress.DefaultConfig()
	cfg.Seed = *seed
	cfg.Ops = *ops
	cfg.Procs = *procs
	cfg.Spaces = *spaces
	cfg.Pages = *pages
	cfg.FramesPerModule = *frames
	cfg.Bug = *bug
	if *faults {
		cfg.Faults = stress.DefaultFaultConfig()
	}

	code := 0
	if *duration <= 0 {
		code = report(runOne(cfg, *shrink, true))
	} else {
		// Soak: consecutive seeds until the wall-clock budget runs out.
		deadline := time.Now().Add(*duration)
		runs := 0
		for time.Now().Before(deadline) {
			if code = report(runOne(cfg, *shrink, *verbose)); code != 0 {
				fmt.Fprintf(os.Stderr, "soak: failed on seed %d after %d clean runs\n", cfg.Seed, runs)
				break
			}
			runs++
			cfg.Seed++
		}
		if code == 0 {
			fmt.Printf("soak: %d runs clean (seeds %d..%d, %d ops each)\n", runs, *seed, cfg.Seed-1, cfg.Ops)
		}
	}

	// Flush profiles before exiting (os.Exit skips defers).
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "platinum-stress: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle allocations so the heap profile is stable
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "platinum-stress: %v\n", err)
		}
		f.Close()
	}
	os.Exit(code)
}

// runOne executes one seed and prints its summary when verbose.
func runOne(cfg stress.Config, shrink, verbose bool) *stress.Result {
	res := stress.Run(cfg, shrink)
	if verbose {
		mode := "faults=off"
		if cfg.Faults.Enabled() {
			mode = "faults=on"
		}
		fmt.Printf("seed %-6d %s: %d ops, %v virtual, %d faults, %d freezes, %d thaws, %d no-memory, digest %s\n",
			cfg.Seed, mode, res.OpsRun, res.Elapsed, res.Faults, res.Freezes, res.Thaws, res.NoMemory, res.Digest)
		if cfg.Faults.Enabled() {
			fmt.Printf("  injected: retry=%v slow_ack=%v (unattributed=%v)\n",
				res.Account[sim.CauseRetry], res.Account[sim.CauseSlowAck], res.Account[sim.CauseUnattributed])
		}
	}
	return res
}

// report prints any failure and returns the process exit code.
func report(res *stress.Result) int {
	if res.Failure == nil {
		return 0
	}
	fmt.Fprintf(os.Stderr, "FAIL: %v\n", res.Failure)
	fmt.Fprint(os.Stderr, res.Failure.Repro())
	return 1
}
