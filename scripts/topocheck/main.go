// Command topocheck validates topology descriptions with the real
// loader (mach.ParseTopology), so CI can prove that TOPOLOGY.md and the
// shipped example files describe machines the simulator accepts.
//
// Arguments ending in .md are scanned for fenced ```json blocks and
// every block is validated (TOPOLOGY.md promises each one is a complete
// topology document); any other argument is validated as a topology
// JSON file. Exits nonzero on the first failure.
package main

import (
	"fmt"
	"os"
	"strings"

	"platinum/internal/mach"
)

// jsonBlocks extracts the contents of every ```json fenced code block.
func jsonBlocks(md string) []string {
	var blocks []string
	for {
		start := strings.Index(md, "```json\n")
		if start < 0 {
			return blocks
		}
		md = md[start+len("```json\n"):]
		end := strings.Index(md, "```")
		if end < 0 {
			return blocks
		}
		blocks = append(blocks, md[:end])
		md = md[end+3:]
	}
}

func main() {
	fail := false
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topocheck: %v\n", err)
			os.Exit(1)
		}
		if strings.HasSuffix(path, ".md") {
			blocks := jsonBlocks(string(raw))
			if len(blocks) == 0 {
				fmt.Fprintf(os.Stderr, "topocheck: %s: no ```json blocks found\n", path)
				fail = true
				continue
			}
			for i, b := range blocks {
				if topo, err := mach.ParseTopology([]byte(b)); err != nil {
					fmt.Fprintf(os.Stderr, "topocheck: %s: json block %d: %v\n", path, i+1, err)
					fail = true
				} else {
					fmt.Printf("topocheck: %s: block %d ok (%q, %d nodes)\n", path, i+1, topo.Name, topo.Nodes())
				}
			}
			continue
		}
		topo, err := mach.ParseTopology(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topocheck: %s: %v\n", path, err)
			fail = true
			continue
		}
		fmt.Printf("topocheck: %s ok (%q, %d nodes)\n", path, topo.Name, topo.Nodes())
	}
	if fail {
		os.Exit(1)
	}
}
