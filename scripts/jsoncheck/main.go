// Command jsoncheck verifies that each argument file parses as JSON and
// — when it is a Chrome trace-event document — that it contains at
// least one trace event. Used by scripts/check-trace.sh so the CI gate
// needs no tooling beyond the Go toolchain.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %v\n", err)
			os.Exit(1)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		if events, ok := doc["traceEvents"].([]any); ok && len(events) == 0 {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: traceEvents is empty\n", path)
			os.Exit(1)
		}
		fmt.Printf("jsoncheck: %s ok (%d bytes)\n", path, len(raw))
	}
}
