#!/bin/sh
# check-vet.sh — static-analysis gate, run by the CI vet job.
#
#   1. platinum-vet over the whole tree must be clean (exit 0). The
#      suppression summary it prints keeps //lint:ignore use visible.
#   2. platinum-vet over a known-bad fixture package must FAIL (exit 1)
#      with file:line findings — a self-test that the gate can actually
#      reject code, so a loader regression cannot silently turn the
#      suite into a no-op.
#   3. With PLATINUM_VET_TOOLS=1 (set in CI, where the module proxy is
#      reachable), staticcheck and govulncheck also run, pinned by
#      version through `go run` so the tools are fetched reproducibly
#      and nothing needs a global install. Offline runs skip them.
#
# Run from the repository root: ./scripts/check-vet.sh
set -eu

STATICCHECK_VERSION=2025.1
GOVULNCHECK_VERSION=v1.1.4

echo "== platinum-vet (tree must be clean)"
go run ./cmd/platinum-vet ./...

echo "== platinum-vet (negative fixture must fail)"
neg_out=$(go run ./cmd/platinum-vet -srcroot internal/analysis/testdata/src chargecause 2>&1) && {
	echo "check-vet: negative fixture unexpectedly passed:"
	echo "$neg_out"
	exit 1
}
if ! echo "$neg_out" | grep -q "fixture.go:.*\[platinum/chargecause\]"; then
	echo "check-vet: negative fixture failed without file:line findings:"
	echo "$neg_out"
	exit 1
fi
echo "negative fixture rejected as expected"

if [ "${PLATINUM_VET_TOOLS:-0}" = "1" ]; then
	echo "== staticcheck $STATICCHECK_VERSION"
	go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./...
	echo "== govulncheck $GOVULNCHECK_VERSION"
	go run "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" ./...
else
	echo "== staticcheck/govulncheck skipped (set PLATINUM_VET_TOOLS=1 to run; they fetch pinned tool modules)"
fi

echo "check-vet: OK"
