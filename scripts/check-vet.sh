#!/bin/sh
# check-vet.sh — static-analysis gate, run by the CI vet job.
#
#   1. platinum-vet over the whole tree must be clean (exit 0), and —
#      now that the suite is multi-pass and interprocedural — must stay
#      under a wall-time budget, so an accidentally quadratic analyzer
#      or loader regression fails the gate instead of quietly eating CI
#      minutes. The suppression summary it prints keeps //lint:ignore
#      use visible.
#   2. The same run is repeated with -sarif into $PLATINUM_VET_SARIF
#      (default platinum-vet.sarif) so the CI vet job can upload the
#      report for code-scanning annotation.
#   3. platinum-vet over known-bad fixture packages must FAIL (exit 1)
#      with file:line findings — a self-test that the gate can actually
#      reject code, so a loader regression cannot silently turn the
#      suite into a no-op. One fixture per bug class: the original
#      direct-pattern analyzer (chargecause) and each interprocedural
#      analyzer (detwalk, hotescape, atomicsafe).
#   4. With PLATINUM_VET_TOOLS=1 (set in CI, where the module proxy is
#      reachable), staticcheck and govulncheck also run, pinned by
#      version through `go run` so the tools are fetched reproducibly
#      and nothing needs a global install. Offline runs skip them.
#
# Run from the repository root: ./scripts/check-vet.sh
set -eu

STATICCHECK_VERSION=2025.1
GOVULNCHECK_VERSION=v1.1.4
VET_BUDGET_SECONDS=30
SARIF_OUT=${PLATINUM_VET_SARIF:-platinum-vet.sarif}

# Build once so the budget below times the analysis, not the toolchain.
go build -o /tmp/platinum-vet.bin ./cmd/platinum-vet

echo "== platinum-vet (tree must be clean, under ${VET_BUDGET_SECONDS}s)"
vet_start=$(date +%s)
/tmp/platinum-vet.bin ./...
vet_elapsed=$(($(date +%s) - vet_start))
echo "platinum-vet wall time: ${vet_elapsed}s (budget ${VET_BUDGET_SECONDS}s)"
if [ "$vet_elapsed" -gt "$VET_BUDGET_SECONDS" ]; then
	echo "check-vet: full-tree run exceeded the ${VET_BUDGET_SECONDS}s budget"
	exit 1
fi

echo "== platinum-vet -sarif -> $SARIF_OUT"
/tmp/platinum-vet.bin -sarif ./... >"$SARIF_OUT"
grep -q '"2.1.0"' "$SARIF_OUT" || {
	echo "check-vet: $SARIF_OUT does not look like SARIF 2.1.0"
	exit 1
}

# negative <package> <grep pattern>: the fixture run must exit nonzero
# and print a finding matching the pattern.
negative() {
	pkg=$1
	pattern=$2
	neg_out=$(/tmp/platinum-vet.bin -srcroot internal/analysis/testdata/src "$pkg" 2>&1) && {
		echo "check-vet: negative fixture $pkg unexpectedly passed:"
		echo "$neg_out"
		exit 1
	}
	if ! echo "$neg_out" | grep -q "$pattern"; then
		echo "check-vet: negative fixture $pkg failed without the expected finding ($pattern):"
		echo "$neg_out"
		exit 1
	fi
	echo "negative fixture $pkg rejected as expected"
}

echo "== platinum-vet (negative fixtures must fail)"
negative chargecause "fixture.go:.*\[platinum/chargecause\]"
negative detwalkfix/internal/sim "sim.go:.*\[platinum/detwalk\].*transitively nondeterministic"
negative hotescape "fixture.go:.*\[platinum/hotescape\].*may allocate"
negative atomicsafe "b.go:.*\[platinum/atomicsafe\].*accessed plainly"

if [ "${PLATINUM_VET_TOOLS:-0}" = "1" ]; then
	echo "== staticcheck $STATICCHECK_VERSION"
	go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./...
	echo "== govulncheck $GOVULNCHECK_VERSION"
	go run "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" ./...
else
	echo "== staticcheck/govulncheck skipped (set PLATINUM_VET_TOOLS=1 to run; they fetch pinned tool modules)"
fi

echo "check-vet: OK"
