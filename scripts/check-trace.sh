#!/bin/sh
# check-trace.sh — causal-trace export gate, run by the CI trace job.
#
#   1. Export a Chrome trace-event JSON from a small gauss run through
#      each CLI surface (platinum-trace, platinum-report -spans) and
#      verify the JSON parses.
#   2. Run the structural validator (platinum-trace -validate) on gauss
#      and mergesort: spans must nest (children within parents, no
#      partial overlap on a track) and per-cause span durations must
#      reconcile EXACTLY with the engine's Account totals.
#
# Run from the repository root: ./scripts/check-trace.sh
set -eu

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "check-trace: exporting Chrome trace (platinum-trace, gauss 32x32 on 4 procs)"
go run ./cmd/platinum-trace -app gauss -n 32 -procs 4 -o "$TMP/trace.json"

echo "check-trace: exporting Chrome trace (platinum-report -spans)"
go run ./cmd/platinum-report -app gauss -n 32 -procs 4 -spans "$TMP/report-spans.json" >/dev/null

echo "check-trace: validating JSON parses"
for f in "$TMP/trace.json" "$TMP/report-spans.json"; do
	go run ./scripts/jsoncheck "$f"
done

echo "check-trace: validating span nesting and exact Account reconciliation"
go run ./cmd/platinum-trace -app gauss -n 48 -procs 4 -validate
go run ./cmd/platinum-trace -app mergesort -n 8192 -procs 4 -validate

echo "check-trace: OK"
