#!/bin/sh
# check-stress.sh — bounded stress soak, run by the CI stress job.
#
#   1. A fixed-seed fault-injection run: 20000 ops, seed 1, every
#      operation followed by Validate + CheckConservation + shadow
#      data check. Deterministic, so a failure here is a real
#      regression, never flake.
#   2. A short wall-clock soak over consecutive seeds with faults on,
#      to cover fresh schedules as the protocol evolves. On failure
#      the harness prints a shrunk seed+ops reproducer to stderr.
#
# Run from the repository root: ./scripts/check-stress.sh
set -eu

SOAK=${STRESS_SOAK:-60s}

echo "check-stress: fixed-seed run (seed 1, 20000 ops, faults on)"
go run ./cmd/platinum-stress -seed 1 -ops 20000 -faults

echo "check-stress: soak ($SOAK, consecutive seeds, faults on)"
go run ./cmd/platinum-stress -seed 2 -ops 5000 -faults -duration "$SOAK"

echo "check-stress: OK"
