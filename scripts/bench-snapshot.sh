#!/bin/sh
# bench-snapshot.sh — record a performance snapshot of the simulator's
# hot paths so perf regressions are visible as a diff.
#
# Runs the scheduler micro-benchmark (BenchmarkEngineStep), the two
# end-to-end application benchmarks (BenchmarkFig1Gauss,
# BenchmarkFig5MergeSort), and the telemetry A/B pair
# (BenchmarkGaussTelemetry: the same gauss run with distributional
# telemetry off and on) and writes one JSON document per line of
# `go test -bench` output:
#
#   {"name": ..., "ns_per_op": ..., "allocs_per_op": ..., "git_sha": ...}
#
# The telemetry-on entry additionally carries the fault-latency
# percentiles the histograms produce ("p50_fault_ns", "p99_fault_ns"),
# and the delta table prints them as columns, so a perf regression in
# the fault path is visible in the same diff as one in the simulator.
#
# BenchmarkVetFullTree is included too: its ns_per_op is the wall time
# of one complete platinum-vet run over the module and its "analyzers"
# field records how many analyzers that run executed, so the snapshot
# ties the gate's cost to its coverage.
#
# Usage (from the repository root):
#
#   ./scripts/bench-snapshot.sh [out.json] [prev.json]
#
# The default output file is BENCH_0.json; pass a different name (e.g.
# BENCH_1.json after an optimization) and diff the two. When a previous
# snapshot is given as the second argument, a delta table (ns/op and
# allocs/op, percent change per benchmark) is printed after the run.
# Numbers are host-dependent — compare snapshots only from the same
# machine.
#
# A snapshot is only meaningful if it names the exact code it measured,
# so a dirty work tree fails the run; set ALLOW_DIRTY=1 to override
# (the recorded git_sha is then suffixed "-dirty").
set -eu

OUT=${1:-BENCH_0.json}
PREV=${2:-}
SHA=$(git rev-parse HEAD 2>/dev/null || echo unknown)
BENCHTIME=${BENCHTIME:-1s}

if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
	if [ "${ALLOW_DIRTY:-0}" = "1" ]; then
		SHA="$SHA-dirty"
		echo "bench-snapshot: WARNING: work tree is dirty; recording git_sha $SHA" >&2
	else
		echo "bench-snapshot: work tree is dirty — commit first so the snapshot's" >&2
		echo "bench-snapshot: git_sha names the measured code (or set ALLOW_DIRTY=1)" >&2
		exit 1
	fi
fi

if [ -n "$PREV" ] && [ ! -r "$PREV" ]; then
	echo "bench-snapshot: previous snapshot $PREV not readable" >&2
	exit 1
fi

echo "bench-snapshot: running benchmarks (benchtime $BENCHTIME)..."
RAW=$(go test -run '^$' \
	-bench '^(BenchmarkEngineStep|BenchmarkFig1Gauss|BenchmarkFig5MergeSort|BenchmarkGaussTelemetry|BenchmarkVetFullTree)$' \
	-benchmem -benchtime "$BENCHTIME" .)

echo "$RAW" | awk -v sha="$SHA" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		ns = ""; allocs = ""; p50 = ""; p99 = ""; analyzers = ""
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") ns = $i
			if ($(i+1) == "allocs/op") allocs = $i
			if ($(i+1) == "p50-fault-ns") p50 = $i
			if ($(i+1) == "p99-fault-ns") p99 = $i
			if ($(i+1) == "analyzers") analyzers = $i
		}
		if (ns != "") {
			line = sprintf("{\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s",
				name, ns, (allocs == "" ? 0 : allocs))
			if (p50 != "") line = line sprintf(", \"p50_fault_ns\": %s, \"p99_fault_ns\": %s", p50, p99)
			if (analyzers != "") line = line sprintf(", \"analyzers\": %s", analyzers)
			printf "%s, \"git_sha\": \"%s\"}\n", line, sha
		}
	}
' >"$OUT"

if [ ! -s "$OUT" ]; then
	echo "bench-snapshot: no benchmark results parsed" >&2
	echo "$RAW" >&2
	exit 1
fi

echo "bench-snapshot: wrote $(wc -l <"$OUT") entries to $OUT"
cat "$OUT"

if [ -n "$PREV" ]; then
	echo ""
	echo "bench-snapshot: delta vs $PREV"
	# Join the two snapshots by benchmark name. Entries present in only
	# one snapshot are listed without a delta.
	awk '
		function field(line, key,   rest) {
			rest = line
			if (!sub(".*\"" key "\": *", "", rest)) return ""
			sub("[,}].*", "", rest)
			gsub("\"", "", rest)
			return rest
		}
		NR == FNR {
			n = field($0, "name")
			if (n != "") {
				pns[n] = field($0, "ns_per_op"); pal[n] = field($0, "allocs_per_op")
				pp50[n] = field($0, "p50_fault_ns"); pp99[n] = field($0, "p99_fault_ns")
			}
			next
		}
		{
			n = field($0, "name")
			if (n == "") next
			order[++count] = n
			ns[n] = field($0, "ns_per_op"); al[n] = field($0, "allocs_per_op")
			p50[n] = field($0, "p50_fault_ns"); p99[n] = field($0, "p99_fault_ns")
		}
		END {
			printf "%-40s %15s %15s %8s %12s %12s %8s %12s %12s\n",
				"benchmark", "ns/op(prev)", "ns/op(now)", "d%", "allocs(prev)", "allocs(now)", "d%", "p50-fault", "p99-fault"
			for (i = 1; i <= count; i++) {
				n = order[i]
				f50 = (p50[n] != "") ? p50[n] : "-"
				f99 = (p99[n] != "") ? p99[n] : "-"
				if (n in pns) {
					dns = (pns[n] > 0) ? sprintf("%+.1f", 100 * (ns[n] - pns[n]) / pns[n]) : "n/a"
					dal = (pal[n] > 0) ? sprintf("%+.1f", 100 * (al[n] - pal[n]) / pal[n]) : (al[n] > 0 ? "new" : "0=0")
					printf "%-40s %15s %15s %8s %12s %12s %8s %12s %12s\n", n, pns[n], ns[n], dns, pal[n], al[n], dal, f50, f99
				} else {
					printf "%-40s %15s %15s %8s %12s %12s %8s %12s %12s\n", n, "-", ns[n], "new", "-", al[n], "new", f50, f99
				}
			}
		}
	' "$PREV" "$OUT"
fi
