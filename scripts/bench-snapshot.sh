#!/bin/sh
# bench-snapshot.sh — record a performance snapshot of the simulator's
# hot paths so perf regressions are visible as a diff.
#
# Runs the scheduler micro-benchmark (BenchmarkEngineStep) plus the two
# end-to-end application benchmarks (BenchmarkFig1Gauss,
# BenchmarkFig5MergeSort) and writes one JSON document per line of
# `go test -bench` output:
#
#   {"name": ..., "ns_per_op": ..., "allocs_per_op": ..., "git_sha": ...}
#
# Usage (from the repository root):
#
#   ./scripts/bench-snapshot.sh [out.json]
#
# The default output file is BENCH_0.json; pass a different name (e.g.
# BENCH_1.json after an optimization) and diff the two. Numbers are
# host-dependent — compare snapshots only from the same machine.
set -eu

OUT=${1:-BENCH_0.json}
SHA=$(git rev-parse HEAD 2>/dev/null || echo unknown)
BENCHTIME=${BENCHTIME:-1s}

echo "bench-snapshot: running benchmarks (benchtime $BENCHTIME)..."
RAW=$(go test -run '^$' \
	-bench '^(BenchmarkEngineStep|BenchmarkFig1Gauss|BenchmarkFig5MergeSort)$' \
	-benchmem -benchtime "$BENCHTIME" .)

echo "$RAW" | awk -v sha="$SHA" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
		ns = ""; allocs = ""
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op") ns = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		if (ns != "")
			printf "{\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"git_sha\": \"%s\"}\n",
				name, ns, (allocs == "" ? 0 : allocs), sha
	}
' >"$OUT"

if [ ! -s "$OUT" ]; then
	echo "bench-snapshot: no benchmark results parsed" >&2
	echo "$RAW" >&2
	exit 1
fi

echo "bench-snapshot: wrote $(wc -l <"$OUT") entries to $OUT"
cat "$OUT"
