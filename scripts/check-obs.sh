#!/bin/sh
# check-obs.sh — distributional-telemetry gate, run by the CI telemetry
# job.
#
#   1. Histogram/series conservation: the telemetry tests at the repo
#      root run gauss, mergesort, and TopoMix (clustered distance
#      matrix) with every sink enabled and reconcile charge histograms
#      against the per-node accounts, op histograms against the
#      retained spans, and the cause series against the total account —
#      exactly, not approximately.
#   2. Telemetry CLI surfaces: platinum-report -hist/-series emit valid
#      JSON with schema_version 2, and platinum-trace -counters emits a
#      Chrome trace whose JSON parses.
#   3. Live monitor smoke: platinum-bench -status serves its JSON and
#      Prometheus endpoints during a -j 4 sweep (exercised through the
#      command's own test, which hits the live endpoint mid-run).
#
# Run from the repository root: ./scripts/check-obs.sh
set -eu

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "check-obs: conservation tests (gauss, mergesort, TopoMix; all sinks on)"
go test -run 'TestTelemetryConservation' .

echo "check-obs: platinum-report -hist -series JSON (gauss 48x48 on 4 procs)"
go run ./cmd/platinum-report -app gauss -n 48 -procs 4 \
	-hist -series 1ms -json >"$TMP/report.json"
go run ./scripts/jsoncheck "$TMP/report.json"
grep -q '"schema_version": 2' "$TMP/report.json" || {
	echo "check-obs: report JSON missing schema_version 2" >&2
	exit 1
}
grep -q '"histograms"' "$TMP/report.json" || {
	echo "check-obs: report JSON missing histograms section" >&2
	exit 1
}
grep -q '"series"' "$TMP/report.json" || {
	echo "check-obs: report JSON missing series section" >&2
	exit 1
}

echo "check-obs: platinum-trace -counters Chrome export"
go run ./cmd/platinum-trace -app gauss -n 32 -procs 4 \
	-counters 1ms -o "$TMP/counters.json"
go run ./scripts/jsoncheck "$TMP/counters.json"

echo "check-obs: platinum-bench -status live-endpoint smoke (-j 4)"
go test -run 'TestStatusEndpoint' ./cmd/platinum-bench

echo "check-obs: OK"
