#!/bin/sh
# check-topo.sh — the CI topology-sweep smoke lane.
#
# Three gates, all well under the bench-smoke budget:
#
#   1. The shipped example topologies and TOPOLOGY.md's embedded JSON
#      validate with the real loader (scripts/topocheck).
#   2. A 64-node two-level sweep point runs end to end through
#      platinum-bench -topology: the topo-custom experiment boots the
#      machine from examples/topologies/cluster-64.json, runs the
#      verified TopoMix workload under every policy, and checks the
#      per-cause conservation invariant on each run (runTopoMixAt
#      fails the experiment otherwise).
#   3. The built-in sweeps' quick variants (topo-nodes up to 64 nodes,
#      topo-skew, topo-tiers) complete with conservation intact.
#
# Usage (from the repository root): ./scripts/check-topo.sh
set -eu

echo "check-topo: loader validation (TOPOLOGY.md + examples)..."
go run ./scripts/topocheck TOPOLOGY.md examples/topologies/*.json

echo "check-topo: 64-node sweep point (cluster-64.json, all policies)..."
go run ./cmd/platinum-bench -quick -topology examples/topologies/cluster-64.json -exp topo-custom

echo "check-topo: built-in sweeps (quick)..."
go run ./cmd/platinum-bench -quick -exp topo-nodes,topo-skew,topo-tiers

echo "check-topo: OK"
