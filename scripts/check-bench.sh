#!/bin/sh
# check-bench.sh — the CI bench-smoke lane.
#
# Two gates, both cheap enough for every push:
#
#   1. The alloc-regression tests (alloc_test.go), run WITHOUT -race so
#      testing.AllocsPerRun sees the real escape-analysis results. These
#      pin Advance, fused handoff, Charge and span Begin/End/Record at
#      zero steady-state allocations.
#   2. A short BenchmarkFig1Gauss run (-benchtime 100x) compared against
#      the committed reference snapshot (BENCH_2.json by default):
#      allocs/op is host-independent and must stay within 2x of the
#      snapshot; ns/op is host-dependent, so its 2x ceiling only catches
#      gross regressions (override the reference with BENCH_REF, or skip
#      the time gate with BENCH_SKIP_NS=1 on exotic runners).
#
# Usage (from the repository root):
#
#   ./scripts/check-bench.sh
set -eu

REF=${BENCH_REF:-BENCH_2.json}

echo "check-bench: alloc-regression tests (no -race)..."
go test -count=1 -run 'ZeroAlloc$' -v . | grep -E '^(=== RUN|--- (PASS|FAIL|SKIP)|PASS|FAIL|ok)'

echo "check-bench: Fig1Gauss smoke (benchtime 100x)..."
RAW=$(go test -run '^$' -bench '^BenchmarkFig1Gauss$' -benchmem -benchtime 100x .)
echo "$RAW"

NS=$(echo "$RAW" | awk '/^BenchmarkFig1Gauss/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") print $i }')
ALLOCS=$(echo "$RAW" | awk '/^BenchmarkFig1Gauss/ { for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$NS" ] || [ -z "$ALLOCS" ]; then
	echo "check-bench: could not parse benchmark output" >&2
	exit 1
fi

if [ ! -r "$REF" ]; then
	echo "check-bench: reference snapshot $REF not found" >&2
	exit 1
fi
REF_LINE=$(grep '"BenchmarkFig1Gauss"' "$REF" || true)
if [ -z "$REF_LINE" ]; then
	echo "check-bench: $REF has no BenchmarkFig1Gauss entry" >&2
	exit 1
fi
REF_NS=$(echo "$REF_LINE" | sed 's/.*"ns_per_op": *\([0-9.]*\).*/\1/')
REF_ALLOCS=$(echo "$REF_LINE" | sed 's/.*"allocs_per_op": *\([0-9]*\).*/\1/')

echo "check-bench: now ns/op=$NS allocs/op=$ALLOCS; reference ns/op=$REF_NS allocs/op=$REF_ALLOCS (2x ceilings)"

FAIL=0
if awk -v a="$ALLOCS" -v r="$REF_ALLOCS" 'BEGIN { exit !(a > 2 * r) }'; then
	echo "check-bench: FAIL: allocs/op $ALLOCS exceeds 2x reference $REF_ALLOCS" >&2
	FAIL=1
fi
if [ "${BENCH_SKIP_NS:-0}" != "1" ] &&
	awk -v n="$NS" -v r="$REF_NS" 'BEGIN { exit !(n > 2 * r) }'; then
	echo "check-bench: FAIL: ns/op $NS exceeds 2x reference $REF_NS" >&2
	FAIL=1
fi
if [ "$FAIL" -ne 0 ]; then
	exit 1
fi
echo "check-bench: OK"
