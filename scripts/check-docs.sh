#!/bin/sh
# check-docs.sh — documentation hygiene gate, run by the CI docs job.
#
#   1. gofmt -l must be clean.
#   2. Every package (the facade plus every internal package) must carry
#      a "// Package <name> ..." comment.
#   3. The README architecture diagram must mention every package that
#      `go list ./internal/...` reports, so the walkthrough cannot
#      silently drift from the tree.
#
# Run from the repository root: ./scripts/check-docs.sh
set -eu

fail=0

# 1. Formatting.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:"
	echo "$unformatted"
	fail=1
fi

# 2. Package comments.
for dir in . internal/*/; do
	if [ "$dir" = "." ]; then
		pkg=platinum # the facade package at the repo root
	else
		pkg=$(basename "$dir")
	fi
	if ! grep -lq "^// Package $pkg " "$dir"/*.go 2>/dev/null; then
		echo "godoc: package $pkg ($dir) has no '// Package $pkg ...' comment"
		fail=1
	fi
done

# 3. README diagram covers every internal package.
for import_path in $(go list ./internal/...); do
	short=${import_path#platinum/}
	if ! grep -q "$short" README.md; then
		echo "README: architecture section does not mention $short"
		fail=1
	fi
done

# 4. README documents every analyzer cmd/platinum-vet actually
#    registers, by its registered name, so the analyzer docs cannot
#    drift from the suite.
for name in $(go run ./cmd/platinum-vet -list | cut -f1); do
	if ! grep -q "$name" README.md; then
		echo "README: does not document analyzer '$name' (cmd/platinum-vet -list)"
		fail=1
	fi
done

# 5. EXPERIMENTS.md documents every registered experiment by id
#    (cmd/platinum-bench -list is the registry), so new sweeps — like
#    pt-variants — cannot land without a paper-vs-measured section.
for id in $(go run ./cmd/platinum-bench -list | awk '{print $1}'); do
	if ! grep -q "$id" EXPERIMENTS.md; then
		echo "EXPERIMENTS.md: does not document experiment '$id' (platinum-bench -list)"
		fail=1
	fi
done

# 6. TOPOLOGY.md's embedded JSON examples and the shipped example files
#    must parse and validate with the real loader (mach.ParseTopology),
#    so the normative spec cannot drift from the parser.
if ! go run ./scripts/topocheck TOPOLOGY.md examples/topologies/*.json; then
	echo "TOPOLOGY.md: embedded examples failed loader validation"
	fail=1
fi

# 7. EXPERIMENTS.md documents every JSON field of the telemetry metrics
#    schema (the `json:"..."` tags in internal/metrics/telemetry.go),
#    so the schema-v2 sections cannot grow undocumented fields.
for tag in $(grep -o 'json:"[a-z0-9_]*' internal/metrics/telemetry.go | cut -d'"' -f2 | sort -u); do
	if ! grep -q "\`$tag\`" EXPERIMENTS.md; then
		echo "EXPERIMENTS.md: does not document telemetry JSON field '$tag' (internal/metrics/telemetry.go)"
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "check-docs: FAILED"
	exit 1
fi
echo "check-docs: OK"
