#!/bin/sh
# check-pt.sh — the CI page-table-variants lane.
#
# Two gates, both well under the bench-smoke budget:
#
#   1. The core cost-table pins: PTHome walk charges, PTReplicate
#      write-through charges, and the batched-shootdown invariants —
#      in particular that a forced batch flush pays the first-target
#      ShootdownSync once per flush, never once per coalesced entry —
#      plus the span-reconciliation gates covering the pmap_walk,
#      pt_replicate and batch_flush causes on gauss, mergesort, and a
#      256-node clustered TopoMix.
#   2. The pt-variants sweep's quick variant (16/64 nodes, both
#      workloads, all four page-table regimes) completes with the
#      per-cause conservation invariant intact on every run
#      (runPTVariantAt fails the experiment otherwise).
#
# Usage (from the repository root): ./scripts/check-pt.sh
set -eu

echo "check-pt: core cost pins + span reconciliation..."
go test -count=1 -run 'TestPT|TestBatch|TestATC' ./internal/core/
go test -count=1 -run 'TestSpansReconcile.*PT' ./internal/apps/

echo "check-pt: pt-variants sweep (quick)..."
go run ./cmd/platinum-bench -quick -exp pt-variants

echo "check-pt: OK"
