package platinum

// End-to-end conservation of the distributional telemetry: for real
// workloads on real machines — gauss and mergesort on the paper's
// topology, TopoMix on a clustered distance-matrix machine — every
// telemetry sink must reconcile exactly against the ground truth it
// shadows. Charge histograms sum to the per-node accounts, op
// histograms to the retained spans, and the cause series (retained
// windows plus spill) to the total account. scripts/check-obs.sh runs
// this file as the observability gate.

import (
	"testing"

	"platinum/internal/apps"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/metrics"
	"platinum/internal/sim"
)

// newTelemetryPlatform boots a fresh platform (no pooling — each test
// owns its kernel) with every telemetry sink and full span retention
// enabled, so the op-histogram check can compare against a complete
// span record.
func newTelemetryPlatform(t *testing.T, cfg kernel.Config) *apps.PlatinumPlatform {
	t.Helper()
	pl, err := apps.NewPlatinumPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl.K.EnableSpans(0)
	pl.K.EnableHistograms()
	pl.K.EnableSeries(sim.Millisecond, 0)
	return pl
}

// checkAllTelemetry runs every conservation check the metrics package
// exports against the finished platform.
func checkAllTelemetry(t *testing.T, pl *apps.PlatinumPlatform) {
	t.Helper()
	if err := metrics.CheckConservation(pl.K.NodeAccounts()); err != nil {
		t.Errorf("account conservation: %v", err)
	}
	if err := metrics.CheckHistConservation(pl.K.Engine(), pl.K.NodeAccounts()); err != nil {
		t.Errorf("charge-histogram conservation: %v", err)
	}
	rec := pl.K.Spans()
	if err := metrics.CheckOpHistConservation(rec, rec.Spans()); err != nil {
		t.Errorf("op-histogram conservation: %v", err)
	}
	if err := metrics.CheckSeriesConservation(pl.K.Engine(), pl.K.TotalAccount()); err != nil {
		t.Errorf("series conservation: %v", err)
	}
}

func TestTelemetryConservationGauss(t *testing.T) {
	pl := newTelemetryPlatform(t, kernel.DefaultConfig())
	cfg := apps.DefaultGaussConfig(64, 8)
	r, err := apps.RunGaussPlatinum(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := apps.GaussReferenceChecksum(cfg); r.Checksum != want {
		t.Errorf("gauss checksum %#x, want %#x (telemetry must not change results)", r.Checksum, want)
	}
	checkAllTelemetry(t, pl)
}

func TestTelemetryConservationMergeSort(t *testing.T) {
	pl := newTelemetryPlatform(t, kernel.DefaultConfig())
	r, err := apps.RunMergeSort(pl, apps.DefaultMergeSortConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sorted {
		t.Error("mergesort output unsorted")
	}
	checkAllTelemetry(t, pl)
}

// TestTelemetryConservationTopoMix exercises the sinks on a generalized
// machine — 16 nodes in 4-node clusters with a non-uniform distance
// matrix and a contended per-cluster switch level — where shootdowns
// and block transfers cross real distance boundaries.
func TestTelemetryConservationTopoMix(t *testing.T) {
	const nodes, clusterSize, far = 16, 4, 2000
	base := mach.DefaultConfig()
	base.Nodes = nodes
	base.PageWords = 256
	dist := make([]int, nodes*nodes)
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i/clusterSize == j/clusterSize {
				dist[i*nodes+j] = mach.DistScale
			} else {
				dist[i*nodes+j] = far
			}
		}
	}
	domain := make([]int, nodes)
	for i := range domain {
		domain[i] = i / clusterSize
	}
	kcfg := kernel.DefaultConfig()
	kcfg.Topology = &mach.Topology{
		Name:     "telemetry-cluster-16x4",
		Base:     base,
		Distance: dist,
		Levels:   []mach.SwitchLevel{{Domain: domain, PerWord: 50 * sim.Nanosecond}},
	}
	// TopoMix touches few pages per module; small frame arrays keep the
	// 16-node machine's metadata cheap (mirrors the topo sweeps).
	kcfg.Core.FramesPerModule = 32

	pl := newTelemetryPlatform(t, kcfg)
	if _, err := apps.RunTopoMix(pl, apps.DefaultTopoMixConfig(nodes, 256)); err != nil {
		t.Fatal(err)
	}
	checkAllTelemetry(t, pl)
}
