module platinum

go 1.22
