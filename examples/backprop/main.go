// The neural-network simulator of §5.3 / Fig. 6: a 40-unit encoder
// network trained with fine-grain, unsynchronized loop parallelism —
// the access pattern coherent memory cannot replicate profitably. The
// kernel quickly freezes the shared pages and the program runs on
// remote references; speedup stays linear but each processor
// contributes about half of an all-local one.
//
//	go run ./examples/backprop -procs 8 -epochs 12
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"platinum"
)

func main() {
	procs := flag.Int("procs", 8, "processors")
	epochs := flag.Int("epochs", 12, "training epochs")
	flag.Parse()

	base := run(1, *epochs, false)
	fmt.Printf("%6s  %12s  %8s  %s\n", "procs", "elapsed", "speedup", "per-proc")
	fmt.Printf("%6d  %12v  %8.2f  %.2f\n", 1, base, 1.0, 1.0)
	for _, p := range []int{2, 4, *procs} {
		if p <= 1 || p > 16 {
			continue
		}
		el := run(p, *epochs, p == *procs)
		sp := float64(base) / float64(el)
		fmt.Printf("%6d  %12v  %8.2f  %.2f\n", p, el, sp, sp/float64(p))
	}
}

func run(procs, epochs int, report bool) platinum.Time {
	pl, err := platinum.NewPlatinumPlatform(platinum.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := platinum.DefaultBackpropConfig(procs)
	cfg.Epochs = epochs
	res, err := platinum.RunBackprop(pl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if res.FinalSSE >= res.InitialSSE {
		log.Fatalf("network did not learn: SSE %f -> %f", res.InitialSSE, res.FinalSSE)
	}
	if report {
		fmt.Printf("\nnetwork learned at p=%d: SSE %.3f -> %.3f\n", procs, res.InitialSSE, res.FinalSSE)
		fmt.Println("kernel report (expect the activation/weight pages FROZEN):")
		r := pl.K.Report()
		if len(r.Pages) > 10 {
			r.Pages = r.Pages[:10]
		}
		if _, err := r.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	return res.Elapsed
}
