// Gaussian elimination (the paper's §5.1 / Fig. 1 workload) on the
// simulated machine, under any of the three programming systems the
// paper compares:
//
//	go run ./examples/gauss -n 240 -procs 8 -system platinum
//	go run ./examples/gauss -n 240 -procs 8 -system uniform
//	go run ./examples/gauss -n 240 -procs 8 -system smp
//
// The run's result matrix is cross-checked against a sequential
// reference, and the kernel's memory management report is printed —
// look for the replicated pivot-row pages and the frozen event-count
// page, both of which the paper describes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"platinum"
)

func main() {
	n := flag.Int("n", 240, "matrix dimension")
	procs := flag.Int("procs", 8, "processors")
	system := flag.String("system", "platinum", "platinum | uniform | smp")
	report := flag.Bool("report", true, "print the kernel memory report")
	flag.Parse()

	cfg := platinum.DefaultGaussConfig(*n, *procs)
	want := platinum.GaussReferenceChecksum(cfg)

	var (
		pl  *platinum.PlatinumPlatform
		res platinum.GaussResult
		err error
	)
	switch *system {
	case "platinum":
		pl, err = platinum.NewPlatinumPlatform(platinum.DefaultConfig())
		if err == nil {
			res, err = platinum.RunGaussPlatinum(pl, cfg)
		}
	case "uniform":
		pl, err = platinum.NewPlatinumPlatform(platinum.UniformSystemConfig())
		if err == nil {
			res, err = platinum.RunGaussUniform(pl, cfg)
		}
	case "smp":
		pl, err = platinum.NewPlatinumPlatform(platinum.DefaultConfig())
		if err == nil {
			res, err = platinum.RunGaussSMP(pl, cfg)
		}
	default:
		log.Fatalf("unknown -system %q", *system)
	}
	if err != nil {
		log.Fatal(err)
	}

	status := "OK"
	if res.Checksum != want {
		status = fmt.Sprintf("MISMATCH (want %#x)", want)
	}
	fmt.Printf("%s gauss %dx%d on %d procs: %v simulated, checksum %#x %s\n\n",
		*system, *n, *n, *procs, res.Elapsed, res.Checksum, status)

	if *report {
		r := pl.K.Report()
		if len(r.Pages) > 12 {
			r.Pages = r.Pages[:12] // the busiest pages tell the story
		}
		if _, err := r.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
