// Merge sort on two machines (the paper's §5.2 / Fig. 5 comparison):
// the same program, written against the portable Env/Platform
// interfaces, runs on the PLATINUM NUMA machine and on a Sequent
// Symmetry-class UMA machine with small write-through caches.
//
//	go run ./examples/mergesort -words 65536
package main

import (
	"flag"
	"fmt"
	"log"

	"platinum"
)

func main() {
	words := flag.Int("words", 1<<16, "words to sort")
	flag.Parse()

	fmt.Printf("tree merge sort, %d words, same program on both machines\n\n", *words)
	fmt.Printf("%6s  %22s  %22s\n", "procs", "PLATINUM (Butterfly)", "Symmetry (UMA)")

	var baseP, baseU float64
	for _, procs := range []int{1, 2, 4, 8, 16} {
		cfg := platinum.DefaultMergeSortConfig(procs)
		cfg.Words = *words

		pp, err := platinum.NewPlatinumPlatform(platinum.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		rp, err := platinum.RunMergeSort(pp, cfg)
		if err != nil {
			log.Fatal(err)
		}
		up, err := platinum.NewUMAPlatform(platinum.DefaultUMAConfig())
		if err != nil {
			log.Fatal(err)
		}
		ru, err := platinum.RunMergeSort(up, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !rp.Sorted || !ru.Sorted {
			log.Fatalf("unsorted output (platinum=%v, uma=%v)", rp.Sorted, ru.Sorted)
		}
		if procs == 1 {
			baseP, baseU = float64(rp.Elapsed), float64(ru.Elapsed)
		}
		fmt.Printf("%6d  %12v (%5.2fx)  %12v (%5.2fx)\n",
			procs,
			rp.Elapsed, baseP/float64(rp.Elapsed),
			ru.Elapsed, baseU/float64(ru.Elapsed))
	}
	fmt.Println("\nPLATINUM's replicas persist in local memory between merge phases;")
	fmt.Println("the Symmetry's 8 KB write-through caches do not (§5.2).")
}
