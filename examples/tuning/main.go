// Tuning walkthrough: reproduce the paper's §4.2 debugging session with
// the kernel's instrumentation. The first version of the paper's
// Gaussian elimination co-located a spin lock with the matrix-size
// variable read in every inner-loop iteration; spinning froze the page
// and the program crawled. The post-mortem report made the diagnosis "a
// simple matter": find the frozen page, see which variables share it,
// separate them (or let the defrost daemon rescue you).
//
// Instead of eyeballing raw counters, this walkthrough reads the cost
// breakdown: the kernel attributes every nanosecond of simulated time
// to a cause, so "the program is slow because most of its time is
// remote word access" is a number, not a guess.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"platinum"
)

// breakdown sums a run's per-processor accounts into the machine-wide
// cost breakdown.
func breakdown(accts []platinum.Account) platinum.CostBreakdown {
	var total platinum.Account
	for i := range accts {
		total.Add(&accts[i])
	}
	return platinum.BreakdownOf(total)
}

// describe prints the cost signature a tuner looks at: elapsed time,
// the remote-access share, and the coherency-overhead share.
func describe(res platinum.AnecdoteResult) {
	b := breakdown(res.Accounts)
	fmt.Printf("elapsed %v; remote-access share %.1f%%; fault+shootdown share %.1f%%; frozen at end: %v\n",
		res.Elapsed, 100*b.RemoteFraction(), 100*b.FaultFraction(), res.SizeFrozen)
}

func main() {
	fmt.Println("=== step 1: the slow program (lock and data share a page) ===")
	bad := platinum.DefaultAnecdoteConfig(6)
	badRes, err := platinum.RunAnecdote(bad)
	if err != nil {
		log.Fatal(err)
	}
	describe(badRes)
	fmt.Println("diagnosis: the remote-access share dominates, and the kernel")
	fmt.Println("report shows the page holding the inner-loop variable is FROZEN —")
	fmt.Println("every read of the matrix size is a remote reference.")

	fmt.Println("\n=== step 2: fix A — let the defrost daemon thaw it ===")
	daemon := bad
	daemon.Defrost = 10 * platinum.Millisecond
	daemonRes, err := platinum.RunAnecdote(daemon)
	if err != nil {
		log.Fatal(err)
	}
	describe(daemonRes)
	fmt.Printf("(%.1fx faster than step 1)\n",
		float64(badRes.Elapsed)/float64(daemonRes.Elapsed))

	fmt.Println("\n=== step 3: fix B — allocation discipline (separate pages) ===")
	good := bad
	good.Colocate = false
	goodRes, err := platinum.RunAnecdote(good)
	if err != nil {
		log.Fatal(err)
	}
	describe(goodRes)
	fmt.Printf("(%.1fx faster than step 1; the remote-access share collapses\n",
		float64(badRes.Elapsed)/float64(goodRes.Elapsed))
	fmt.Println("because the size page is free to replicate)")

	fmt.Println("\nThe paper's conclusion (§6): keep data with different access")
	fmt.Println("patterns on distinct pages; thawing salvages performance when")
	fmt.Println("the allocation was done poorly.")
}
