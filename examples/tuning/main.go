// Tuning walkthrough: reproduce the paper's §4.2 debugging session with
// the kernel's instrumentation. The first version of the paper's
// Gaussian elimination co-located a spin lock with the matrix-size
// variable read in every inner-loop iteration; spinning froze the page
// and the program crawled. The post-mortem report made the diagnosis "a
// simple matter": find the frozen page, see which variables share it,
// separate them (or let the defrost daemon rescue you).
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"platinum"
)

func main() {
	fmt.Println("=== step 1: the slow program (lock and data share a page) ===")
	bad := platinum.DefaultAnecdoteConfig(6)
	badRes, err := platinum.RunAnecdote(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elapsed %v; matrix-size page frozen at end: %v\n",
		badRes.Elapsed, badRes.SizeFrozen)
	fmt.Println("diagnosis (from the §4.2 kernel report): the page holding the")
	fmt.Println("inner-loop variable is FROZEN — every read is a remote reference.")

	fmt.Println("\n=== step 2: fix A — let the defrost daemon thaw it ===")
	daemon := bad
	daemon.Defrost = 10 * platinum.Millisecond
	daemonRes, err := platinum.RunAnecdote(daemon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elapsed %v (%.1fx faster); frozen at end: %v\n",
		daemonRes.Elapsed,
		float64(badRes.Elapsed)/float64(daemonRes.Elapsed),
		daemonRes.SizeFrozen)

	fmt.Println("\n=== step 3: fix B — allocation discipline (separate pages) ===")
	good := bad
	good.Colocate = false
	goodRes, err := platinum.RunAnecdote(good)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elapsed %v (%.1fx faster); frozen at end: %v\n",
		goodRes.Elapsed,
		float64(badRes.Elapsed)/float64(goodRes.Elapsed),
		goodRes.SizeFrozen)

	fmt.Println("\nThe paper's conclusion (§6): keep data with different access")
	fmt.Println("patterns on distinct pages; thawing salvages performance when")
	fmt.Println("the allocation was done poorly.")
}
