// Quickstart: boot a simulated 16-node NUMA machine, share memory
// between threads on different processors, and watch the coherent
// memory system replicate, migrate, and freeze pages.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"platinum"
)

func main() {
	k, err := platinum.Boot(platinum.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sp := k.NewSpace()

	// Page-aligned allocation zones (§6): keep data with different
	// access patterns on distinct pages.
	data, err := sp.AllocWords("data", 2048, platinum.Read|platinum.Write)
	if err != nil {
		log.Fatal(err)
	}
	flag, err := sp.AllocWords("flag", 1, platinum.Read|platinum.Write)
	if err != nil {
		log.Fatal(err)
	}
	hot, err := sp.AllocWords("hot-counter", 1, platinum.Read|platinum.Write)
	if err != nil {
		log.Fatal(err)
	}

	// A producer fills the data zone on processor 0; pages materialize
	// in processor 0's memory module.
	k.Spawn("producer", 0, sp, func(t *platinum.Thread) {
		buf := make([]uint32, 2048)
		for i := range buf {
			buf[i] = uint32(i * i)
		}
		t.WriteRange(data, buf)
		t.Write(flag, 1)
	})

	// Consumers on other processors read it. The first read of each
	// page faults and the kernel transparently replicates the page into
	// the reader's local memory — later reads run at local speed.
	for p := 1; p <= 3; p++ {
		p := p
		k.Spawn(fmt.Sprintf("consumer-%d", p), p, sp, func(t *platinum.Thread) {
			t.WaitAtLeast(flag, 1)
			buf := make([]uint32, 2048)
			first := t.Now()
			t.ReadRange(data, buf)
			faulting := t.Now() - first

			again := t.Now()
			t.ReadRange(data, buf)
			local := t.Now() - again
			fmt.Printf("consumer-%d: first read %v (faults+replication), second %v (all local)\n",
				p, faulting, local)
		})
	}

	// Meanwhile, four threads hammer one counter word. That fine-grain
	// write sharing makes the protocol freeze the page: everyone gets a
	// remote mapping instead of futile migration (§4.2).
	for p := 4; p <= 7; p++ {
		k.Spawn("incrementer", p, sp, func(t *platinum.Thread) {
			for i := 0; i < 200; i++ {
				t.AtomicAdd(hot, 1)
			}
		})
	}

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated time: %v\n\n", k.Now())
	// The paper's §4.2 post-mortem report: faults, contention, frozen
	// pages. Expect the hot-counter page to be FROZEN.
	if _, err := k.Report().WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
