package platinum

// One benchmark per paper artifact (table/figure), each regenerating the
// experiment in quick mode, plus micro-benchmarks of the simulator's own
// hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The full-size experiments are produced by cmd/platinum-bench (no
// -quick); EXPERIMENTS.md records paper-vs-measured for those.

import (
	"strconv"
	"strings"
	"testing"

	"platinum/internal/analysis"
	"platinum/internal/apps"
	"platinum/internal/core"
	"platinum/internal/exp"
	"platinum/internal/kernel"
	"platinum/internal/mach"
	"platinum/internal/sim"
	"platinum/internal/span"
)

// benchExperiment runs one experiment per iteration and reports a named
// cell of the result table as a benchmark metric.
func benchExperiment(b *testing.B, id string, metric string, pick func(*exp.Table) float64) {
	b.Helper()
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(exp.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if pick != nil {
			last = pick(tab)
		}
	}
	if pick != nil {
		b.ReportMetric(last, metric)
	}
}

// cell parses table cell [row][col] as a float (suffix-tolerant).
func cell(tab *exp.Table, row, col int) float64 {
	s := tab.Rows[row][col]
	s = strings.TrimRightFunc(s, func(r rune) bool {
		return (r < '0' || r > '9') && r != '.'
	})
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// BenchmarkBasicOps regenerates the §4 basic-operation timing table.
func BenchmarkBasicOps(b *testing.B) {
	benchExperiment(b, "basic-ops", "µs/extra-target", func(t *exp.Table) float64 {
		return cell(t, len(t.Rows)-1, 1)
	})
}

// BenchmarkTable1 regenerates Table 1 from the analytic model.
func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1", "smin(rho=1,g=1)", func(t *exp.Table) float64 {
		for _, row := range t.Rows {
			if row[0] == "1.00" {
				return cell(t, 6, 2)
			}
		}
		return 0
	})
}

// BenchmarkTable1Empirical cross-checks Table 1 cells by simulation.
func BenchmarkTable1Empirical(b *testing.B) {
	benchExperiment(b, "table1-empirical", "rows", func(t *exp.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkFig1Gauss regenerates the Fig. 1 speedup curve and reports
// the max-processor speedup (paper: 13.5 at 16 on the full size).
func BenchmarkFig1Gauss(b *testing.B) {
	benchExperiment(b, "fig1", "speedup@16", func(t *exp.Table) float64 {
		return cell(t, len(t.Rows)-1, 2)
	})
}

// BenchmarkGaussCompare regenerates the three-system §5.1 comparison.
func BenchmarkGaussCompare(b *testing.B) {
	benchExperiment(b, "gauss-compare", "platinum-speedup@16", func(t *exp.Table) float64 {
		return cell(t, 0, 3)
	})
}

// BenchmarkFig5MergeSort regenerates the Fig. 5 comparison and reports
// PLATINUM's advantage over the Symmetry at 16 processors.
func BenchmarkFig5MergeSort(b *testing.B) {
	benchExperiment(b, "fig5", "platinum/symmetry-speedup@16", func(t *exp.Table) float64 {
		last := len(t.Rows) - 1
		return cell(t, last, 2) / cell(t, last, 4)
	})
}

// BenchmarkFig6Backprop regenerates the Fig. 6 curve and reports the
// per-processor contribution at the largest count (paper: ~0.5).
func BenchmarkFig6Backprop(b *testing.B) {
	benchExperiment(b, "fig6", "per-proc@max", func(t *exp.Table) float64 {
		return cell(t, len(t.Rows)-1, 3)
	})
}

// BenchmarkFreezeAnecdote regenerates the §4.2 frozen-page comparison
// and reports the cost ratio of co-location without defrost.
func BenchmarkFreezeAnecdote(b *testing.B) {
	benchExperiment(b, "freeze-anecdote", "colocated/separate", func(t *exp.Table) float64 {
		frozen := parseDur(t.Rows[0][2])
		separate := parseDur(t.Rows[2][2])
		if separate == 0 {
			return 0
		}
		return frozen / separate
	})
}

// BenchmarkT1Sweep regenerates the t1 sensitivity sweep.
func BenchmarkT1Sweep(b *testing.B) {
	benchExperiment(b, "t1-sweep", "rows", func(t *exp.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkPolicyAblation regenerates the §8 policy comparison.
func BenchmarkPolicyAblation(b *testing.B) {
	benchExperiment(b, "policy-ablation", "rows", func(t *exp.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkReplSource regenerates the replication-source ablation.
func BenchmarkReplSource(b *testing.B) {
	benchExperiment(b, "repl-source", "least-loaded-speedup", func(t *exp.Table) float64 {
		return cell(t, 1, 2)
	})
}

// BenchmarkGaussTelemetry prices the distributional telemetry: the same
// gauss run with everything off versus charge histograms, op histograms
// and both simulated-time series all on. The two sub-benchmarks share
// nothing (distinct pool keys — instrumentation state is part of the
// platform configuration), so "off" is the clean baseline; the "on"
// variant additionally reports the fault-latency percentiles the
// histograms exist to produce. The overhead budget is <2% and zero
// extra allocations per op (scripts/bench-snapshot.sh records both).
func BenchmarkGaussTelemetry(b *testing.B) {
	run := func(b *testing.B, instrument bool) {
		key := "bench-gauss:telemetry=off"
		if instrument {
			key = "bench-gauss:telemetry=on"
		}
		var p50, p99 float64
		for i := 0; i < b.N; i++ {
			pl, err := apps.AcquirePlatform(key, kernel.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if instrument {
				pl.K.EnableHistograms()
				pl.K.EnableSeries(sim.Time(1e6), 0) // 1ms windows
			}
			if _, err := apps.RunGaussPlatinum(pl, apps.DefaultGaussConfig(64, 8)); err != nil {
				b.Fatal(err)
			}
			if instrument {
				h := pl.K.Spans().OpHist(span.KindFault)
				p50, p99 = float64(h.Quantile(0.50)), float64(h.Quantile(0.99))
			}
			apps.ReleasePlatform(key, pl)
		}
		if instrument {
			b.ReportMetric(p50, "p50-fault-ns")
			b.ReportMetric(p99, "p99-fault-ns")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// parseDur converts a sim.Time string like "1.340ms" to milliseconds.
func parseDur(s string) float64 {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "µs"):
		s, mult = strings.TrimSuffix(s, "µs"), 1e-3
	case strings.HasSuffix(s, "ms"):
		s = strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "ns"):
		s, mult = strings.TrimSuffix(s, "ns"), 1e-6
	case strings.HasSuffix(s, "s"):
		s, mult = strings.TrimSuffix(s, "s"), 1e3
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v * mult
}

// --- simulator micro-benchmarks ---

// BenchmarkEngineStep measures the discrete-event engine's dispatch
// throughput (one Advance per op) across its scheduling paths:
//
//   - fastpath-eligible: one thread always strictly minimum, so every
//     Advance returns without any goroutine switch;
//   - handoff: eight threads in lockstep, every Advance a fused
//     replace-top handoff to the next thread;
//   - nofastpath: the same lockstep workload with the fast path
//     disabled (the A/B determinism configuration).
func BenchmarkEngineStep(b *testing.B) {
	run := func(b *testing.B, threads int, fastPath bool) {
		prev := sim.SetDefaultFastPath(fastPath)
		defer sim.SetDefaultFastPath(prev)
		e := sim.NewEngine()
		for t := 0; t < threads; t++ {
			n := b.N / threads
			e.Spawn("w", func(th *sim.Thread) {
				for i := 0; i < n; i++ {
					th.Advance(100)
				}
			})
		}
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("fastpath-eligible", func(b *testing.B) { run(b, 1, true) })
	b.Run("handoff", func(b *testing.B) { run(b, 8, true) })
	b.Run("nofastpath", func(b *testing.B) { run(b, 8, false) })
}

// BenchmarkTouchATCHit measures the coherent memory fast path.
func BenchmarkTouchATCHit(b *testing.B) {
	e := sim.NewEngine()
	m, err := mach.New(e, mach.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewSystem(m, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cm := s.NewCmap()
	cm.Activate(nil, 0)
	cp := s.NewCpage()
	if _, err := cm.Enter(0, cp, core.Read|core.Write); err != nil {
		b.Fatal(err)
	}
	n := b.N
	b.ResetTimer()
	e.Spawn("t", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			if _, err := s.Touch(th, 0, cm, 0, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFaultReplication measures the full fault-handler path: each
// iteration replicates a page to a processor that then loses it again.
func BenchmarkFaultReplication(b *testing.B) {
	e := sim.NewEngine()
	m, err := mach.New(e, mach.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Policy = core.AlwaysCache{}
	s, err := core.NewSystem(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	cm := s.NewCmap()
	for p := 0; p < m.Nodes(); p++ {
		cm.Activate(nil, p)
	}
	cp := s.NewCpage()
	if _, err := cm.Enter(0, cp, core.Read|core.Write); err != nil {
		b.Fatal(err)
	}
	n := b.N
	b.ResetTimer()
	e.Spawn("t", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			// Write on alternating processors migrates the page back
			// and forth: one full fault + shootdown + transfer per op.
			if _, err := s.Touch(th, i%2, cm, 0, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelRangeRead measures end-to-end kernel range reads of a
// locally replicated page.
func BenchmarkKernelRangeRead(b *testing.B) {
	k, err := kernel.Boot(kernel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sp := k.NewSpace()
	va, err := sp.AllocPages("bench", 1, core.Read|core.Write)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]uint32, k.PageWords())
	n := b.N
	b.SetBytes(int64(len(buf) * 4))
	b.ResetTimer()
	k.Spawn("t", 0, sp, func(t *kernel.Thread) {
		for i := 0; i < n; i++ {
			t.ReadRange(va, buf)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPageSizeSweep regenerates the §9 page-size experiment.
func BenchmarkPageSizeSweep(b *testing.B) {
	benchExperiment(b, "page-size-sweep", "rows", func(t *exp.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkBlockXferConcurrency regenerates the §7 what-if and reports
// the speedup from halving block-transfer module occupancy.
func BenchmarkBlockXferConcurrency(b *testing.B) {
	benchExperiment(b, "blockxfer-concurrency", "speedup@50%occ", func(t *exp.Table) float64 {
		return cell(t, 2, 2)
	})
}

// BenchmarkAppSuite regenerates the extended application library table.
func BenchmarkAppSuite(b *testing.B) {
	benchExperiment(b, "app-suite", "rows", func(t *exp.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkScaling regenerates the §9 scalability probe and reports the
// largest machine's efficiency relative to 16 nodes.
func BenchmarkScaling(b *testing.B) {
	benchExperiment(b, "scaling", "efficiency@max", func(t *exp.Table) float64 {
		return cell(t, len(t.Rows)-1, 5)
	})
}

// BenchmarkMachineGenerations regenerates the Butterfly 1 vs Plus
// comparison and reports the Plus's gauss speedup.
func BenchmarkMachineGenerations(b *testing.B) {
	benchExperiment(b, "machine-generations", "plus-speedup@16", func(t *exp.Table) float64 {
		return cell(t, 1, 4)
	})
}

// BenchmarkColocateOptions regenerates the §4.1 co-location comparison.
func BenchmarkColocateOptions(b *testing.B) {
	benchExperiment(b, "colocate-options", "rows", func(t *exp.Table) float64 {
		return float64(len(t.Rows))
	})
}

// BenchmarkVetFullTree runs the complete platinum-vet analyzer suite —
// loading, type-checking, call-graph construction, fact propagation and
// reporting — over the whole module, exactly as the CI vet gate does.
// One iteration is one full multi-pass run from a cold loader, so the
// ns/op is the gate's wall time and a loader or analyzer regression
// shows up in the bench snapshot diff next to the simulator numbers.
// The analyzer count is reported as a metric so the snapshot records
// how much checking that wall time bought.
func BenchmarkVetFullTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := analysis.NewModuleLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		paths, err := loader.DiscoverAll()
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.Load(paths...)
		if err != nil {
			b.Fatal(err)
		}
		res, err := analysis.Run(analysis.All(), pkgs)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed() {
			b.Fatalf("tree is not vet-clean: %d findings, %d bad ignores",
				len(res.Findings), len(res.BadIgnores))
		}
	}
	b.ReportMetric(float64(len(analysis.All())), "analyzers")
}
